//! Deterministic synthetic SOC generation, for scaling studies and
//! property tests beyond the paper's two hand-built systems.

use socet_rtl::{Core, CoreBuilder, Direction, RtlNode, Soc, SocBuilder};
use std::sync::Arc;

/// Shape parameters of a generated SOC.
///
/// # Examples
///
/// ```
/// use socet_socs::synthetic::{generate_soc, SyntheticConfig};
/// let soc = generate_soc(&SyntheticConfig {
///     cores: 6,
///     width: 8,
///     pipeline_depth: 3,
///     seed: 42,
/// });
/// assert_eq!(soc.logic_cores().len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of logic cores.
    pub cores: usize,
    /// Datapath width of every core.
    pub width: u16,
    /// Register depth of each core's main pipeline.
    pub pipeline_depth: usize,
    /// Seed controlling topology choices.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            cores: 4,
            width: 8,
            pipeline_depth: 3,
            seed: 1,
        }
    }
}

/// One synthetic pipeline core with a Version-2 shortcut mux.
fn synthetic_core(name: &str, width: u16, depth: usize, with_shortcut: bool) -> Core {
    let mut b = CoreBuilder::new(name);
    let i = b.port("i", Direction::In, width).expect("fresh name");
    let o = b.port("o", Direction::Out, width).expect("fresh name");
    let regs: Vec<_> = (0..depth.max(1))
        .map(|k| b.register(&format!("r{k}"), width).expect("fresh name"))
        .collect();
    b.connect_mux(RtlNode::Port(i), RtlNode::Reg(regs[0]), 0)
        .expect("consistent");
    for w in regs.windows(2) {
        b.connect_mux(RtlNode::Reg(w[0]), RtlNode::Reg(w[1]), 0)
            .expect("consistent");
    }
    let last = regs[regs.len() - 1];
    b.connect_reg_to_port(last, o).expect("consistent");
    if with_shortcut && regs.len() > 1 {
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(last), 1)
            .expect("consistent");
    }
    b.build().expect("synthetic core is consistent")
}

/// Generates an SOC of `config.cores` pipeline cores in a mixed topology:
/// a backbone chain (each core feeds the next) with every third core also
/// pinned out directly, so routing mixes deep embedding with easy access.
///
/// Generation is deterministic in `config`.
pub fn generate_soc(config: &SyntheticConfig) -> Soc {
    let mut seed = config.seed.max(1);
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut sb = SocBuilder::new("synthetic");
    let pi = sb.input_pin("pi", config.width).expect("fresh name");
    let po = sb.output_pin("po", config.width).expect("fresh name");
    let mut prev: Option<(socet_rtl::CoreInstanceId, socet_rtl::PortId)> = None;
    let mut last = None;
    for k in 0..config.cores {
        let depth = 1 + (rng() as usize % config.pipeline_depth.max(1));
        let with_shortcut = rng() % 2 == 0;
        let core = Arc::new(synthetic_core(
            &format!("core{k}"),
            config.width,
            depth,
            with_shortcut,
        ));
        let i = core.find_port("i").expect("port exists");
        let o = core.find_port("o").expect("port exists");
        let u = sb
            .instantiate(&format!("u{k}"), core.clone())
            .expect("fresh name");
        match prev {
            None => sb.connect_pin_to_core(pi, u, i).expect("consistent"),
            Some((pu, po_port)) => sb.connect_cores(pu, po_port, u, i).expect("consistent"),
        }
        // Every third core gets its own observation pin, mixing deep and
        // shallow embedding.
        if k % 3 == 2 {
            let extra = sb
                .output_pin(&format!("tap{k}"), config.width)
                .expect("fresh name");
            sb.connect_core_to_pin(u, o, extra).expect("consistent");
        }
        prev = Some((u, o));
        last = Some((u, o));
    }
    let (lu, lo) = last.expect("at least one core");
    sb.connect_core_to_pin(lu, lo, po).expect("consistent");
    sb.build().expect("synthetic SOC is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let a = generate_soc(&cfg);
        let b = generate_soc(&cfg);
        assert_eq!(a.cores().len(), b.cores().len());
        assert_eq!(a.nets().len(), b.nets().len());
        assert_eq!(a.pins().len(), b.pins().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_soc(&SyntheticConfig {
            seed: 1,
            cores: 8,
            ..Default::default()
        });
        let b = generate_soc(&SyntheticConfig {
            seed: 2,
            cores: 8,
            ..Default::default()
        });
        // Not guaranteed in general, but these seeds give different
        // depths/shortcuts and thus different connection counts.
        let conns =
            |s: &Soc| -> usize { s.cores().iter().map(|c| c.core().connections().len()).sum() };
        assert_ne!(conns(&a), conns(&b));
    }

    #[test]
    fn scales_to_many_cores() {
        let soc = generate_soc(&SyntheticConfig {
            cores: 24,
            ..Default::default()
        });
        assert_eq!(soc.logic_cores().len(), 24);
        // Backbone + taps: every core touched.
        for c in soc.logic_cores() {
            let touched = soc.nets().iter().any(|n| {
                matches!(n.src, socet_rtl::SocEndpoint::CorePort { core, .. } if core == c)
                    || matches!(n.dst, socet_rtl::SocEndpoint::CorePort { core, .. } if core == c)
            });
            assert!(touched);
        }
    }
}
