//! Deterministic synthetic SOC generation, for scaling studies and
//! property tests beyond the paper's two hand-built systems.

use socet_rtl::{BitRange, Core, CoreBuilder, Direction, RtlNode, Soc, SocBuilder, SocEndpoint};
use std::fmt;
use std::sync::Arc;

/// Shape parameters of a generated SOC.
///
/// # Examples
///
/// ```
/// use socet_socs::synthetic::{generate_soc, SyntheticConfig};
/// let soc = generate_soc(&SyntheticConfig {
///     cores: 6,
///     width: 8,
///     pipeline_depth: 3,
///     seed: 42,
/// });
/// assert_eq!(soc.logic_cores().len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of logic cores.
    pub cores: usize,
    /// Datapath width of every core.
    pub width: u16,
    /// Register depth of each core's main pipeline.
    pub pipeline_depth: usize,
    /// Seed controlling topology choices.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            cores: 4,
            width: 8,
            pipeline_depth: 3,
            seed: 1,
        }
    }
}

/// One synthetic pipeline core with a Version-2 shortcut mux.
fn synthetic_core(name: &str, width: u16, depth: usize, with_shortcut: bool) -> Core {
    let mut b = CoreBuilder::new(name);
    let i = b.port("i", Direction::In, width).expect("fresh name");
    let o = b.port("o", Direction::Out, width).expect("fresh name");
    let regs: Vec<_> = (0..depth.max(1))
        .map(|k| b.register(&format!("r{k}"), width).expect("fresh name"))
        .collect();
    b.connect_mux(RtlNode::Port(i), RtlNode::Reg(regs[0]), 0)
        .expect("consistent");
    for w in regs.windows(2) {
        b.connect_mux(RtlNode::Reg(w[0]), RtlNode::Reg(w[1]), 0)
            .expect("consistent");
    }
    let last = regs[regs.len() - 1];
    b.connect_reg_to_port(last, o).expect("consistent");
    if with_shortcut && regs.len() > 1 {
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(last), 1)
            .expect("consistent");
    }
    b.build().expect("synthetic core is consistent")
}

/// Generates an SOC of `config.cores` pipeline cores in a mixed topology:
/// a backbone chain (each core feeds the next) with every third core also
/// pinned out directly, so routing mixes deep embedding with easy access.
///
/// Generation is deterministic in `config`.
pub fn generate_soc(config: &SyntheticConfig) -> Soc {
    let mut seed = config.seed.max(1);
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut sb = SocBuilder::new("synthetic");
    let pi = sb.input_pin("pi", config.width).expect("fresh name");
    let po = sb.output_pin("po", config.width).expect("fresh name");
    let mut prev: Option<(socet_rtl::CoreInstanceId, socet_rtl::PortId)> = None;
    let mut last = None;
    for k in 0..config.cores {
        let depth = 1 + (rng() as usize % config.pipeline_depth.max(1));
        let with_shortcut = rng() % 2 == 0;
        let core = Arc::new(synthetic_core(
            &format!("core{k}"),
            config.width,
            depth,
            with_shortcut,
        ));
        let i = core.find_port("i").expect("port exists");
        let o = core.find_port("o").expect("port exists");
        let u = sb
            .instantiate(&format!("u{k}"), core.clone())
            .expect("fresh name");
        match prev {
            None => sb.connect_pin_to_core(pi, u, i).expect("consistent"),
            Some((pu, po_port)) => sb.connect_cores(pu, po_port, u, i).expect("consistent"),
        }
        // Every third core gets its own observation pin, mixing deep and
        // shallow embedding.
        if k % 3 == 2 {
            let extra = sb
                .output_pin(&format!("tap{k}"), config.width)
                .expect("fresh name");
            sb.connect_core_to_pin(u, o, extra).expect("consistent");
        }
        prev = Some((u, o));
        last = Some((u, o));
    }
    let (lu, lo) = last.expect("at least one core");
    sb.connect_core_to_pin(lu, lo, po).expect("consistent");
    sb.build().expect("synthetic SOC is consistent")
}

/// Shape of one core in a [`SocSpec`]: the knobs the randomized replay
/// harness varies and the shrinker turns off one at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthCoreSpec {
    /// Datapath width of the core's ports and registers (kept ≥ 2).
    pub width: u16,
    /// Register depth of the main pipeline (kept ≥ 1).
    pub depth: usize,
    /// Whether a Version-2-style shortcut mux bypasses the pipeline.
    pub shortcut: bool,
    /// Whether the core has a second input port muxed into the pipeline
    /// (extra mux fan-in on a register).
    pub side_input: bool,
    /// Whether the core's output also gets a dedicated chip pin.
    pub tap: bool,
}

/// A fully explicit synthetic-SOC description: unlike [`SyntheticConfig`]
/// (one shape knob for all cores), every core's width, depth, mux fan-in
/// and pin access is individually controlled. This is the search space the
/// replay oracle's randomized harness draws from and the greedy shrinker
/// minimizes over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocSpec {
    /// Per-core shapes, in backbone order.
    pub cores: Vec<SynthCoreSpec>,
}

impl fmt::Display for SocSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec[")?;
        for (k, c) in self.cores.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(
                f,
                "w{}d{}{}{}{}",
                c.width,
                c.depth,
                if c.shortcut { "s" } else { "" },
                if c.side_input { "i" } else { "" },
                if c.tap { "t" } else { "" }
            )?;
        }
        write!(f, "]")
    }
}

impl SocSpec {
    /// Draws a random spec from `seed`: 2–6 cores, widths 2–16, depths
    /// 1–3, independent shortcut / side-input / tap flags. Deterministic in
    /// the seed.
    pub fn random(seed: u64) -> SocSpec {
        let mut s = seed.max(1);
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let n = 2 + (rng() % 5) as usize;
        let cores = (0..n)
            .map(|_| SynthCoreSpec {
                width: 2 + (rng() % 15) as u16,
                depth: 1 + (rng() % 3) as usize,
                shortcut: rng() % 2 == 0,
                side_input: rng() % 3 == 0,
                tap: rng() % 3 == 0,
            })
            .collect();
        SocSpec { cores }
    }

    /// Builds the spec's core netlist for backbone position `k`.
    fn spec_core(&self, k: usize) -> Core {
        let sc = &self.cores[k];
        let (width, depth) = (sc.width.max(2), sc.depth.max(1));
        let mut b = CoreBuilder::new(&format!("score{k}"));
        let i = b.port("i", Direction::In, width).expect("fresh name");
        let o = b.port("o", Direction::Out, width).expect("fresh name");
        let regs: Vec<_> = (0..depth)
            .map(|d| b.register(&format!("r{d}"), width).expect("fresh name"))
            .collect();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(regs[0]), 0)
            .expect("consistent");
        for w in regs.windows(2) {
            b.connect_mux(RtlNode::Reg(w[0]), RtlNode::Reg(w[1]), 0)
                .expect("consistent");
        }
        let last = regs[regs.len() - 1];
        b.connect_reg_to_port(last, o).expect("consistent");
        if sc.shortcut && regs.len() > 1 {
            b.connect_mux(RtlNode::Port(i), RtlNode::Reg(last), 1)
                .expect("consistent");
        }
        if sc.side_input {
            let si = b.port("si", Direction::In, width).expect("fresh name");
            let target = regs[regs.len() / 2];
            // The target register may already carry leg 1 (the shortcut
            // lands on the last register); pick the next free leg.
            let leg = if sc.shortcut && regs.len() > 1 && regs.len() / 2 == regs.len() - 1 {
                2
            } else {
                1
            };
            b.connect_mux(RtlNode::Port(si), RtlNode::Reg(target), leg)
                .expect("consistent");
        }
        b.build().expect("spec core is consistent")
    }

    /// Builds the SOC: a backbone chain through every core's `i`/`o` ports
    /// (width-mismatched links connect the low `min(w_src, w_dst)` bits),
    /// one chip PI as wide as the widest core (also feeding every side
    /// input), a chip PO on the last core, and a dedicated tap pin per
    /// flagged core.
    ///
    /// # Panics
    ///
    /// Panics if the spec is empty.
    pub fn build(&self) -> Soc {
        assert!(!self.cores.is_empty(), "SocSpec with no cores");
        let pi_width = self.cores.iter().map(|c| c.width.max(2)).max().unwrap();
        let mut sb = SocBuilder::new("synthetic-spec");
        let pi = sb.input_pin("pi", pi_width).expect("fresh name");
        let mut prev: Option<(socet_rtl::CoreInstanceId, socet_rtl::PortId, u16)> = None;
        for (k, sc) in self.cores.iter().enumerate() {
            let width = sc.width.max(2);
            let core = Arc::new(self.spec_core(k));
            let i = core.find_port("i").expect("port exists");
            let o = core.find_port("o").expect("port exists");
            let u = sb
                .instantiate(&format!("u{k}"), core.clone())
                .expect("fresh name");
            match prev {
                None => sb
                    .connect(
                        SocEndpoint::Pin {
                            pin: pi,
                            range: BitRange::full(width),
                        },
                        SocEndpoint::CorePort {
                            core: u,
                            port: i,
                            range: BitRange::full(width),
                        },
                    )
                    .expect("consistent"),
                Some((pu, po_port, pw)) => {
                    let m = pw.min(width);
                    sb.connect(
                        SocEndpoint::CorePort {
                            core: pu,
                            port: po_port,
                            range: BitRange::full(m),
                        },
                        SocEndpoint::CorePort {
                            core: u,
                            port: i,
                            range: BitRange::full(m),
                        },
                    )
                    .expect("consistent")
                }
            }
            if let Some(si) = core.find_port("si") {
                sb.connect(
                    SocEndpoint::Pin {
                        pin: pi,
                        range: BitRange::full(width),
                    },
                    SocEndpoint::CorePort {
                        core: u,
                        port: si,
                        range: BitRange::full(width),
                    },
                )
                .expect("consistent");
            }
            if sc.tap {
                let tap = sb
                    .output_pin(&format!("tap{k}"), width)
                    .expect("fresh name");
                sb.connect_core_to_pin(u, o, tap).expect("consistent");
            }
            prev = Some((u, o, width));
        }
        let (lu, lo, lw) = prev.expect("at least one core");
        let po = sb.output_pin("po", lw).expect("fresh name");
        sb.connect_core_to_pin(lu, lo, po).expect("consistent");
        sb.build().expect("spec SOC is consistent")
    }

    /// Every spec one simplification step away, in greedy-shrink order:
    /// drop a core first, then per-core feature removals (tap, side input,
    /// shortcut), then depth and width reductions. A shrinker repeatedly
    /// takes the first candidate that still fails.
    pub fn shrink_candidates(&self) -> Vec<SocSpec> {
        let mut out = Vec::new();
        if self.cores.len() > 1 {
            for k in 0..self.cores.len() {
                let mut s = self.clone();
                s.cores.remove(k);
                out.push(s);
            }
        }
        for k in 0..self.cores.len() {
            let c = self.cores[k];
            if c.tap {
                let mut s = self.clone();
                s.cores[k].tap = false;
                out.push(s);
            }
            if c.side_input {
                let mut s = self.clone();
                s.cores[k].side_input = false;
                out.push(s);
            }
            if c.shortcut {
                let mut s = self.clone();
                s.cores[k].shortcut = false;
                out.push(s);
            }
            if c.depth > 1 {
                let mut s = self.clone();
                s.cores[k].depth = c.depth - 1;
                out.push(s);
            }
            if c.width > 2 {
                let mut s = self.clone();
                s.cores[k].width = (c.width / 2).max(2);
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::default();
        let a = generate_soc(&cfg);
        let b = generate_soc(&cfg);
        assert_eq!(a.cores().len(), b.cores().len());
        assert_eq!(a.nets().len(), b.nets().len());
        assert_eq!(a.pins().len(), b.pins().len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_soc(&SyntheticConfig {
            seed: 1,
            cores: 8,
            ..Default::default()
        });
        let b = generate_soc(&SyntheticConfig {
            seed: 2,
            cores: 8,
            ..Default::default()
        });
        // Not guaranteed in general, but these seeds give different
        // depths/shortcuts and thus different connection counts.
        let conns =
            |s: &Soc| -> usize { s.cores().iter().map(|c| c.core().connections().len()).sum() };
        assert_ne!(conns(&a), conns(&b));
    }

    #[test]
    fn spec_build_is_deterministic_and_shaped() {
        let spec = SocSpec::random(7);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.cores().len(), spec.cores.len());
        assert_eq!(a.nets().len(), b.nets().len());
        assert_eq!(a.pins().len(), b.pins().len());
        let taps = spec.cores.iter().filter(|c| c.tap).count();
        // pi + po + one pin per tap.
        assert_eq!(a.pins().len(), 2 + taps);
        assert_ne!(SocSpec::random(7), SocSpec::random(8));
    }

    #[test]
    fn spec_shrink_candidates_are_strictly_simpler() {
        let spec = SocSpec::random(3);
        let cost = |s: &SocSpec| -> usize {
            s.cores
                .iter()
                .map(|c| {
                    c.width as usize
                        + c.depth
                        + usize::from(c.shortcut)
                        + usize::from(c.side_input)
                        + usize::from(c.tap)
                })
                .sum()
        };
        let base = cost(&spec);
        let candidates = spec.shrink_candidates();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(cost(c) < base, "{c} not simpler than {spec}");
            // Every candidate still builds a valid SOC.
            let soc = c.build();
            assert_eq!(soc.logic_cores().len(), c.cores.len());
        }
    }

    #[test]
    fn minimal_spec_has_no_shrink_candidates() {
        let spec = SocSpec {
            cores: vec![SynthCoreSpec {
                width: 2,
                depth: 1,
                shortcut: false,
                side_input: false,
                tap: false,
            }],
        };
        assert!(spec.shrink_candidates().is_empty());
        assert_eq!(spec.build().logic_cores().len(), 1);
    }

    #[test]
    fn scales_to_many_cores() {
        let soc = generate_soc(&SyntheticConfig {
            cores: 24,
            ..Default::default()
        });
        assert_eq!(soc.logic_cores().len(), 24);
        // Backbone + taps: every core touched.
        for c in soc.logic_cores() {
            let touched = soc.nets().iter().any(|n| {
                matches!(n.src, socet_rtl::SocEndpoint::CorePort { core, .. } if core == c)
                    || matches!(n.dst, socet_rtl::SocEndpoint::CorePort { core, .. } if core == c)
            });
            assert!(touched);
        }
    }
}
