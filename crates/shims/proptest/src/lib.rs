//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test with an **empty registry** (no network,
//! no vendored sources), so this path crate implements the subset of the
//! proptest API the test suites actually use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * integer / float range strategies, tuples of strategies,
//!   [`prop::collection::vec`], and [`any::<bool>()`](any),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Generation is a deterministic xorshift stream seeded from the test name,
//! so failures reproduce across runs. There is no shrinking: a failing case
//! reports its case index and generated inputs instead. The case count comes
//! from [`ProptestConfig::with_cases`] and can be overridden with the
//! `PROPTEST_CASES` environment variable.

use std::fmt;
use std::ops::Range;

/// Runner configuration — only the knob the workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives every property its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn in_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let span = hi - lo;
        // Modulo bias is irrelevant for test-input generation.
        lo + self.next_u64() % span
    }

    /// Uniform float in `[lo, hi)`.
    pub fn in_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Something that can generate a value from the RNG.
///
/// Mirrors proptest's `Strategy` in spirit; there is no shrink tree.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.in_range_f64(self.start, self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// `any::<T>()` support, implemented for the types the suites draw.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 != 0
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy producing arbitrary values of `T` (use as `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// A vector strategy: length in `len`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n =
                    rng.in_range_u64(self.len.start as u64, self.len.end.max(1) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Drives one property: owns the RNG and the case budget.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the property named `name`.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let rng = TestRng::from_name(name);
        TestRunner { config, rng, name }
    }

    /// Number of cases to run (env `PROPTEST_CASES` overrides the config).
    pub fn cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.config.cases)
    }

    /// The RNG drawing this property's inputs.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Panics (failing the `#[test]`) if `case` failed.
    pub fn check(&self, case_index: u32, inputs: &str, result: Result<(), TestCaseError>) {
        if let Err(e) = result {
            panic!(
                "property `{}` failed at case {} with inputs {{{}}}: {}",
                self.name, case_index, inputs, e
            );
        }
    }
}

/// Property-test entry point; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for __proptest_case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                let __proptest_inputs = [
                    $(format!("{}: {:?}", stringify!($arg), $arg)),+
                ].join(", ");
                #[allow(unused_mut)]
                let mut __proptest_body =
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                runner.check(__proptest_case, &__proptest_inputs, __proptest_body());
            }
        }
    )*};
    // Entry arms come last so the `@cfg` marker above never re-enters the
    // catch-all and recurses.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                a,
                b
            )));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} == {:?})",
                format!($($fmt)*),
                a,
                b
            )));
        }
    }};
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let t = (0usize..4, 1u64..u64::MAX).generate(&mut rng);
            assert!(t.0 < 4 && t.1 >= 1);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..256, 2..40).generate(&mut rng);
            assert!((2..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 256));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_compiles_and_runs(x in 0u32..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag || !flag, true);
            prop_assert_ne!(x, 10, "x must stay below ten, got {}", x);
        }
    }
}
