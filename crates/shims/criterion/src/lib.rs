//! Offline stand-in for the `criterion` crate.
//!
//! The workspace must build and test with an **empty registry**, so this
//! path crate implements the subset of the criterion API the benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Behaviour mirrors criterion's two modes:
//!
//! * `cargo bench` (argv contains `--bench`): every benchmark is calibrated
//!   to ~`target_sample_ms` per sample, measured for `sample_size` samples,
//!   and a `min / mean / max` per-iteration line is printed;
//! * `cargo test` (no `--bench` flag): each closure runs exactly once so
//!   benches double as smoke tests, like real criterion's test mode.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A `group/function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Label `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Mean per-iteration time of the last `iter` call (measure mode only).
    last: Option<Stats>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `cargo bench`: calibrate and measure.
    Measure,
    /// `cargo test`: run once, no timing.
    Test,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Bencher {
    /// Runs `f` under the current mode and records per-iteration stats.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                black_box(f());
            }
            Mode::Measure => {
                // Calibrate: how many iterations fill ~target per sample?
                const TARGET_SAMPLE: Duration = Duration::from_millis(25);
                let mut iters: u64 = 1;
                loop {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = t.elapsed();
                    if elapsed >= TARGET_SAMPLE / 2 || iters >= 1 << 20 {
                        break;
                    }
                    iters = (iters * 2).max(
                        (TARGET_SAMPLE.as_nanos() as u64)
                            .checked_div(elapsed.as_nanos().max(1) as u64 / iters.max(1))
                            .unwrap_or(iters * 2)
                            .max(iters + 1),
                    );
                }
                let mut samples = Vec::with_capacity(self.sample_size);
                for _ in 0..self.sample_size.max(2) {
                    let t = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    samples.push(t.elapsed() / iters as u32);
                }
                let min = *samples.iter().min().expect("non-empty");
                let max = *samples.iter().max().expect("non-empty");
                let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
                self.last = Some(Stats { min, mean, max });
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last: None,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            last: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        match b.last {
            Some(s) => println!(
                "{}/{:<40} time: [{} {} {}]",
                self.name,
                id,
                fmt_duration(s.min),
                fmt_duration(s.mean),
                fmt_duration(s.max)
            ),
            None if self.criterion.mode == Mode::Test => {
                println!("{}/{}: ok (test mode, 1 iteration)", self.name, id)
            }
            None => println!("{}/{}: no measurement (iter never called)", self.name, id),
        }
    }

    /// Ends the group (kept for API parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Benchmark driver; created by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion: `cargo bench` passes --bench to the target;
        // under `cargo test` the flag is absent and benches run once.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Test },
        }
    }
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            sample_size: 10,
            criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { mode: Mode::Test };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("once", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_reports_stats() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut b = Bencher {
            mode: Mode::Measure,
            sample_size: 3,
            last: None,
        };
        b.iter(|| black_box(2u64 + 2));
        assert!(b.last.is_some());
        let s = b.last.expect("stats");
        assert!(s.min <= s.mean && s.mean <= s.max);
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("schedule", 8).to_string(), "schedule/8");
    }
}
