//! The flat gate netlist: one signal per gate, fixed-arity gates.

use socet_cells::{AreaReport, CellKind};
use std::error::Error;
use std::fmt;

/// Identifier of a signal; each signal is defined by exactly one gate, so
/// this doubles as the gate's index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Sentinel for an unused gate operand.
    pub(crate) const NONE: SignalId = SignalId(u32::MAX);

    /// The signal's index within the netlist.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a signal id from a dense index, the inverse of
    /// [`SignalId::index`]. The caller is responsible for keeping the index
    /// within the owning netlist's gate count.
    pub fn from_index(i: usize) -> SignalId {
        SignalId(i as u32)
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a gate.
///
/// Gates are at most 3-input ([`GateKind::Mux2`]: select, then the `s=0`
/// and `s=1` data legs). [`GateKind::Dff`] is the only sequential kind; its
/// single operand is the D input and its defined signal is Q.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Constant 0 source.
    Const0,
    /// Constant 1 source.
    Const1,
    /// Primary input.
    Input,
    /// D flip-flop; operand `a` is D, the defined signal is Q.
    Dff,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 mux: operands are `(s, a0, a1)`, output is `a0` when `s=0`.
    Mux2,
}

impl GateKind {
    /// Number of operands the gate consumes.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input => 0,
            GateKind::Dff | GateKind::Not | GateKind::Buf => 1,
            GateKind::And2
            | GateKind::Or2
            | GateKind::Nand2
            | GateKind::Nor2
            | GateKind::Xor2
            | GateKind::Xnor2 => 2,
            GateKind::Mux2 => 3,
        }
    }

    /// The [`CellKind`] this gate maps onto for area accounting, or `None`
    /// for zero-area pseudo-gates (inputs, constants, buffers).
    pub fn cell(self) -> Option<CellKind> {
        match self {
            GateKind::Const0 | GateKind::Const1 | GateKind::Input | GateKind::Buf => None,
            GateKind::Dff => Some(CellKind::Dff),
            GateKind::Not => Some(CellKind::Inv),
            GateKind::And2 => Some(CellKind::And2),
            GateKind::Or2 => Some(CellKind::Or2),
            GateKind::Nand2 => Some(CellKind::Nand2),
            GateKind::Nor2 => Some(CellKind::Nor2),
            GateKind::Xor2 | GateKind::Xnor2 => Some(CellKind::Xor2),
            GateKind::Mux2 => Some(CellKind::Mux2),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Input => "input",
            GateKind::Dff => "dff",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
            GateKind::And2 => "and2",
            GateKind::Or2 => "or2",
            GateKind::Nand2 => "nand2",
            GateKind::Nor2 => "nor2",
            GateKind::Xor2 => "xor2",
            GateKind::Xnor2 => "xnor2",
            GateKind::Mux2 => "mux2",
        };
        f.write_str(s)
    }
}

/// One gate: kind plus up to three operand signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gate {
    /// The gate's kind.
    pub kind: GateKind,
    pub(crate) ops: [SignalId; 3],
}

impl Gate {
    /// The gate's operands (exactly [`GateKind::arity`] of them).
    pub fn operands(&self) -> &[SignalId] {
        &self.ops[..self.kind.arity()]
    }
}

/// Errors raised while finalizing a [`GateNetlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// The combinational part of the netlist contains a cycle.
    CombinationalLoop {
        /// A signal on the cycle.
        signal: SignalId,
    },
    /// An operand references a signal defined later without being a flip-flop
    /// boundary (builder misuse).
    UndefinedOperand {
        /// The gate whose operand is invalid.
        gate: SignalId,
    },
    /// The netlist has no outputs.
    NoOutputs,
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::CombinationalLoop { signal } => {
                write!(f, "combinational loop through {signal}")
            }
            GateError::UndefinedOperand { gate } => {
                write!(f, "gate {gate} references an undefined operand")
            }
            GateError::NoOutputs => f.write_str("netlist has no outputs"),
        }
    }
}

impl Error for GateError {}

/// A finalized gate netlist.
///
/// Signals are densely indexed; `gate(i)` defines signal `i`. Inputs and
/// outputs carry names so elaboration can map them back to RTL port bits.
///
/// The *combinational view* used by ATPG treats every DFF Q as a pseudo
/// primary input and every DFF D as a pseudo primary output — the full-scan
/// assumption that HSCAN justifies.
#[derive(Debug, Clone)]
pub struct GateNetlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<(String, SignalId)>,
    pub(crate) outputs: Vec<(String, SignalId)>,
    pub(crate) topo: Vec<SignalId>,
}

impl GateNetlist {
    /// The netlist's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates; `gates()[i]` defines signal `i`.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate defining `signal`.
    pub fn gate(&self, signal: SignalId) -> &Gate {
        &self.gates[signal.index()]
    }

    /// Named primary inputs in declaration order.
    pub fn inputs(&self) -> &[(String, SignalId)] {
        &self.inputs
    }

    /// Named primary outputs in declaration order.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// Signals of all D flip-flops (their Q outputs), in index order.
    pub fn flip_flops(&self) -> Vec<SignalId> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Dff)
            .map(|(i, _)| SignalId(i as u32))
            .collect()
    }

    /// Number of D flip-flops.
    pub fn flip_flop_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::Dff)
            .count()
    }

    /// Evaluation order of the combinational gates: every operand of a gate
    /// either precedes it in this order or is an [`GateKind::Input`],
    /// [`GateKind::Dff`] or constant.
    pub fn topo_order(&self) -> &[SignalId] {
        &self.topo
    }

    /// Pseudo primary inputs of the combinational (full-scan) view: the real
    /// inputs followed by every DFF Q.
    pub fn comb_inputs(&self) -> Vec<SignalId> {
        let mut v: Vec<SignalId> = self.inputs.iter().map(|(_, s)| *s).collect();
        v.extend(self.flip_flops());
        v
    }

    /// Pseudo primary outputs of the combinational view: the real outputs
    /// followed by every DFF D signal.
    pub fn comb_outputs(&self) -> Vec<SignalId> {
        let mut v: Vec<SignalId> = self.outputs.iter().map(|(_, s)| *s).collect();
        v.extend(
            self.gates
                .iter()
                .filter(|g| g.kind == GateKind::Dff)
                .map(|g| g.ops[0]),
        );
        v
    }

    /// Area of the netlist under `lib`, counting each gate's mapped cell.
    ///
    /// # Examples
    ///
    /// ```
    /// use socet_gate::{GateKind, GateNetlistBuilder};
    /// use socet_cells::CellLibrary;
    /// let mut b = GateNetlistBuilder::new("n");
    /// let a = b.input("a");
    /// let q = b.dff(a);
    /// b.output("q", q);
    /// let nl = b.build()?;
    /// assert_eq!(nl.area().cells(&CellLibrary::generic_08um()), 1);
    /// # Ok::<(), socet_gate::GateError>(())
    /// ```
    pub fn area(&self) -> AreaReport {
        let mut r = AreaReport::new();
        for g in &self.gates {
            if let Some(cell) = g.kind.cell() {
                r.tally(cell, 1);
            }
        }
        r
    }

    /// Position of every signal in [`GateNetlist::topo_order`], or
    /// `u32::MAX` for sources (inputs, flip-flops, constants) that never
    /// appear in it. Fault-cone construction sorts transitive fanouts with
    /// this so cone members can be re-evaluated in one forward pass.
    pub fn topo_positions(&self) -> Vec<u32> {
        let mut pos = vec![u32::MAX; self.gates.len()];
        for (k, s) in self.topo.iter().enumerate() {
            pos[s.index()] = k as u32;
        }
        pos
    }

    /// Fanout lists: for each signal, the gates that consume it.
    pub fn fanouts(&self) -> Vec<Vec<SignalId>> {
        let mut fo = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for op in g.operands() {
                fo[op.index()].push(SignalId(i as u32));
            }
        }
        fo
    }
}

impl fmt::Display for GateNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist {} ({} gates, {} inputs, {} outputs, {} FFs)",
            self.name,
            self.gates.len(),
            self.inputs.len(),
            self.outputs.len(),
            self.flip_flop_count()
        )
    }
}

/// Builder for a [`GateNetlist`].
///
/// All the `gate*` methods return the [`SignalId`] the new gate defines, so
/// netlists are built expression-style.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder};
/// let mut b = GateNetlistBuilder::new("maj3");
/// let (x, y, z) = (b.input("x"), b.input("y"), b.input("z"));
/// let xy = b.gate2(GateKind::And2, x, y);
/// let yz = b.gate2(GateKind::And2, y, z);
/// let xz = b.gate2(GateKind::And2, x, z);
/// let t = b.gate2(GateKind::Or2, xy, yz);
/// let m = b.gate2(GateKind::Or2, t, xz);
/// b.output("maj", m);
/// let nl = b.build()?;
/// assert_eq!(nl.gates().len(), 8);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GateNetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<(String, SignalId)>,
    outputs: Vec<(String, SignalId)>,
}

impl GateNetlistBuilder {
    /// Starts a netlist called `name`.
    pub fn new(name: &str) -> Self {
        GateNetlistBuilder {
            name: name.to_owned(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    fn push(&mut self, kind: GateKind, ops: [SignalId; 3]) -> SignalId {
        let id = SignalId(self.gates.len() as u32);
        self.gates.push(Gate { kind, ops });
        id
    }

    /// Declares a named primary input and returns its signal.
    pub fn input(&mut self, name: &str) -> SignalId {
        let id = self.push(GateKind::Input, [SignalId::NONE; 3]);
        self.inputs.push((name.to_owned(), id));
        id
    }

    /// Constant 0 signal.
    pub fn const0(&mut self) -> SignalId {
        self.push(GateKind::Const0, [SignalId::NONE; 3])
    }

    /// Constant 1 signal.
    pub fn const1(&mut self) -> SignalId {
        self.push(GateKind::Const1, [SignalId::NONE; 3])
    }

    /// A D flip-flop with D = `d`; returns its Q signal.
    pub fn dff(&mut self, d: SignalId) -> SignalId {
        self.push(GateKind::Dff, [d, SignalId::NONE, SignalId::NONE])
    }

    /// A D flip-flop whose D input will be set later via
    /// [`GateNetlistBuilder::set_dff_input`]; returns its Q signal.
    ///
    /// This is how elaboration handles registers whose next-state logic
    /// depends on their own Q (loops through the DFF boundary are fine).
    pub fn dff_deferred(&mut self) -> SignalId {
        self.push(GateKind::Dff, [SignalId::NONE; 3])
    }

    /// Sets the D input of a flip-flop created by
    /// [`GateNetlistBuilder::dff_deferred`].
    ///
    /// # Panics
    ///
    /// Panics if `q` does not identify a DFF.
    pub fn set_dff_input(&mut self, q: SignalId, d: SignalId) {
        let g = &mut self.gates[q.index()];
        assert_eq!(g.kind, GateKind::Dff, "set_dff_input on non-DFF {q}");
        g.ops[0] = d;
    }

    /// A 1-input gate (`Not` or `Buf`).
    pub fn gate1(&mut self, kind: GateKind, a: SignalId) -> SignalId {
        assert_eq!(kind.arity(), 1, "gate1 with {kind}");
        self.push(kind, [a, SignalId::NONE, SignalId::NONE])
    }

    /// A 2-input gate.
    pub fn gate2(&mut self, kind: GateKind, a: SignalId, b: SignalId) -> SignalId {
        assert_eq!(kind.arity(), 2, "gate2 with {kind}");
        self.push(kind, [a, b, SignalId::NONE])
    }

    /// A 2:1 mux selecting `a0` when `s = 0` and `a1` when `s = 1`.
    pub fn mux(&mut self, s: SignalId, a0: SignalId, a1: SignalId) -> SignalId {
        self.push(GateKind::Mux2, [s, a0, a1])
    }

    /// Marks `signal` as a named primary output.
    pub fn output(&mut self, name: &str, signal: SignalId) {
        self.outputs.push((name.to_owned(), signal));
    }

    /// Reduction over a slice with a 2-input gate kind (balanced tree).
    ///
    /// # Panics
    ///
    /// Panics if `signals` is empty or `kind` is not 2-input.
    pub fn tree(&mut self, kind: GateKind, signals: &[SignalId]) -> SignalId {
        assert!(!signals.is_empty(), "tree over no signals");
        let mut layer: Vec<SignalId> = signals.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate2(kind, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// Copies every gate of `nl` into this builder, returning the signal
    /// translation table (`map[old.index()] = new id`). Input gates keep
    /// their kind and are registered under `prefix/` + their old name;
    /// outputs of `nl` are *not* re-registered — the caller decides what is
    /// observable. Used by SOC flattening to merge per-core netlists.
    pub fn append(&mut self, nl: &GateNetlist, prefix: &str) -> Vec<SignalId> {
        let offset = self.gates.len() as u32;
        let map: Vec<SignalId> = (0..nl.gates().len())
            .map(|i| SignalId(offset + i as u32))
            .collect();
        for g in nl.gates() {
            let mut ops = [SignalId::NONE; 3];
            for (k, op) in g.operands().iter().enumerate() {
                ops[k] = map[op.index()];
            }
            self.gates.push(Gate { kind: g.kind, ops });
        }
        for (name, s) in nl.inputs() {
            self.inputs
                .push((format!("{prefix}/{name}"), map[s.index()]));
        }
        map
    }

    /// The primary inputs registered so far (name, signal). Flattening uses
    /// this to find elaboration-internal control inputs that must be tied
    /// off.
    pub fn pending_inputs(&self) -> &[(String, SignalId)] {
        &self.inputs
    }

    /// Converts the Input gate `input` into a buffer driven by `driver`,
    /// removing it from the primary-input list. Used when flattening an SOC:
    /// a core input fed by a chip-level net stops being externally
    /// controllable.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not identify an Input gate.
    pub fn rewire_input(&mut self, input: SignalId, driver: SignalId) {
        let g = &mut self.gates[input.index()];
        assert_eq!(g.kind, GateKind::Input, "rewire_input on non-input {input}");
        g.kind = GateKind::Buf;
        g.ops[0] = driver;
        self.inputs.retain(|(_, s)| *s != input);
    }

    /// Validates and freezes the netlist, computing the topological order of
    /// its combinational part.
    ///
    /// # Errors
    ///
    /// * [`GateError::NoOutputs`] — nothing is observable;
    /// * [`GateError::UndefinedOperand`] — an operand slot was left unset
    ///   (e.g. a deferred DFF without [`GateNetlistBuilder::set_dff_input`]);
    /// * [`GateError::CombinationalLoop`] — a cycle not broken by a DFF.
    pub fn build(self) -> Result<GateNetlist, GateError> {
        if self.outputs.is_empty() {
            return Err(GateError::NoOutputs);
        }
        let n = self.gates.len();
        for (i, g) in self.gates.iter().enumerate() {
            for op in g.operands() {
                if op.index() >= n {
                    return Err(GateError::UndefinedOperand {
                        gate: SignalId(i as u32),
                    });
                }
            }
        }
        // Kahn's algorithm over combinational gates; Input/Dff/Const are
        // sources and do not appear in the order.
        let mut indeg = vec![0usize; n];
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            if matches!(
                g.kind,
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
            ) {
                continue;
            }
            for op in g.operands() {
                let src = &self.gates[op.index()];
                if matches!(
                    src.kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                ) {
                    continue;
                }
                indeg[i] += 1;
                fanout[op.index()].push(i as u32);
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| {
                indeg[i as usize] == 0
                    && !matches!(
                        self.gates[i as usize].kind,
                        GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                    )
            })
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            topo.push(SignalId(i));
            for &succ in &fanout[i as usize] {
                indeg[succ as usize] -= 1;
                if indeg[succ as usize] == 0 {
                    queue.push(succ);
                }
            }
        }
        let comb_count = self
            .gates
            .iter()
            .filter(|g| {
                !matches!(
                    g.kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                )
            })
            .count();
        if topo.len() != comb_count {
            let stuck = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| SignalId(i as u32))
                .unwrap_or(SignalId(0));
            return Err(GateError::CombinationalLoop { signal: stuck });
        }
        Ok(GateNetlist {
            name: self.name,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_table() {
        assert_eq!(GateKind::Input.arity(), 0);
        assert_eq!(GateKind::Dff.arity(), 1);
        assert_eq!(GateKind::Nand2.arity(), 2);
        assert_eq!(GateKind::Mux2.arity(), 3);
    }

    #[test]
    fn no_outputs_is_error() {
        let mut b = GateNetlistBuilder::new("n");
        b.input("a");
        assert_eq!(b.build().unwrap_err(), GateError::NoOutputs);
    }

    #[test]
    fn comb_loop_detected() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        // g1 = and(a, g2); g2 = or(g1, a): a loop with no DFF.
        let g1 = b.push(GateKind::And2, [a, SignalId(2), SignalId::NONE]);
        let g2 = b.push(GateKind::Or2, [g1, a, SignalId::NONE]);
        assert_eq!(g2, SignalId(2));
        b.output("o", g2);
        assert!(matches!(
            b.build(),
            Err(GateError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn dff_breaks_loops() {
        let mut b = GateNetlistBuilder::new("counter_bit");
        let q = b.dff_deferred();
        let nq = b.gate1(GateKind::Not, q);
        b.set_dff_input(q, nq);
        b.output("q", q);
        let nl = b.build().unwrap();
        assert_eq!(nl.flip_flop_count(), 1);
        assert_eq!(nl.comb_outputs(), vec![q, nq]);
    }

    #[test]
    fn undefined_operand_detected() {
        let mut b = GateNetlistBuilder::new("n");
        let q = b.dff_deferred(); // D never set
        b.output("q", q);
        assert!(matches!(b.build(), Err(GateError::UndefinedOperand { .. })));
    }

    #[test]
    fn topo_order_is_consistent() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.gate2(GateKind::Xor2, a, c);
        let y = b.gate2(GateKind::And2, x, a);
        b.output("y", y);
        let nl = b.build().unwrap();
        let pos: Vec<usize> = nl.topo_order().iter().map(|s| s.index()).collect();
        let xi = pos.iter().position(|&p| p == x.index()).unwrap();
        let yi = pos.iter().position(|&p| p == y.index()).unwrap();
        assert!(xi < yi);
    }

    #[test]
    fn tree_reduces_all_inputs() {
        let mut b = GateNetlistBuilder::new("n");
        let ins: Vec<SignalId> = (0..5).map(|i| b.input(&format!("i{i}"))).collect();
        let root = b.tree(GateKind::Or2, &ins);
        b.output("o", root);
        let nl = b.build().unwrap();
        // 5 leaves need 4 OR gates.
        assert_eq!(
            nl.gates()
                .iter()
                .filter(|g| g.kind == GateKind::Or2)
                .count(),
            4
        );
    }

    #[test]
    fn area_skips_pseudo_gates() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let z = b.const0();
        let m = b.mux(a, z, a);
        let buf = b.gate1(GateKind::Buf, m);
        b.output("o", buf);
        let nl = b.build().unwrap();
        let area = nl.area();
        assert_eq!(area.count(CellKind::Mux2), 1);
        assert_eq!(area.instances(), 1);
    }

    #[test]
    fn fanouts_inverse_of_operands() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let x = b.gate1(GateKind::Not, a);
        let y = b.gate2(GateKind::And2, a, x);
        b.output("y", y);
        let nl = b.build().unwrap();
        let fo = nl.fanouts();
        assert_eq!(fo[a.index()], vec![x, y]);
        assert_eq!(fo[x.index()], vec![y]);
    }

    #[test]
    fn display_summarizes() {
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let q = b.dff(a);
        b.output("q", q);
        let nl = b.build().unwrap();
        assert_eq!(
            nl.to_string(),
            "netlist n (2 gates, 1 inputs, 1 outputs, 1 FFs)"
        );
    }
}
