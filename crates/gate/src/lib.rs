//! Gate-level substrate: netlists, elaboration from RTL, and logic
//! simulation.
//!
//! The paper's flow relies on an in-house synthesis tool (to get cell-count
//! areas) and on logic-level models of each core (for ATPG and fault
//! simulation). This crate is that substrate:
//!
//! * [`GateNetlist`] / [`GateNetlistBuilder`] — a flat netlist of simple
//!   gates and D flip-flops, where every gate defines one signal;
//! * [`elaborate()`](elaborate::elaborate) — deterministic decomposition of a `socet-rtl`
//!   [`Core`](socet_rtl::Core) into gates (registers → DFFs, mux trees →
//!   MUX2 chains, functional units → ripple structures, random blocks →
//!   seeded gate networks);
//! * [`CombSim`] — two-valued event-free simulation in topological order;
//! * [`PackedSim`] — 64-way bit-parallel pattern simulation, the workhorse
//!   of the fault simulator in `socet-atpg`;
//! * [`SeqSim`] — three-valued (0/1/X) sequential simulation for the
//!   un-DFT'd "Orig." experiments.
//!
//! # Examples
//!
//! ```
//! use socet_gate::{GateKind, GateNetlistBuilder, CombSim};
//!
//! let mut b = GateNetlistBuilder::new("xor2");
//! let a = b.input("a");
//! let c = b.input("b");
//! let x = b.gate2(GateKind::Xor2, a, c);
//! b.output("y", x);
//! let nl = b.build()?;
//! let sim = CombSim::new(&nl);
//! assert_eq!(sim.run(&[true, false]), vec![true]);
//! # Ok::<(), socet_gate::GateError>(())
//! ```

pub mod codec;
pub mod elaborate;
pub mod export;
pub mod netlist;
pub mod sim;

pub use elaborate::{elaborate, elaborate_with, ElabOptions, Elaborated};
pub use netlist::{Gate, GateError, GateKind, GateNetlist, GateNetlistBuilder, SignalId};
pub use sim::{CombSim, PackedSim, SeqSim, Tri};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_doc_example() {
        let mut b = GateNetlistBuilder::new("xor2");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate2(GateKind::Xor2, a, c);
        b.output("y", x);
        let nl = b.build().unwrap();
        let sim = CombSim::new(&nl);
        assert_eq!(sim.run(&[true, false]), vec![true]);
    }
}
