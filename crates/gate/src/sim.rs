//! Logic simulation: two-valued, 64-way packed, and three-valued sequential.

use crate::netlist::{GateKind, GateNetlist, SignalId};
use std::fmt;

/// Two-valued combinational simulator.
///
/// Flip-flop outputs are treated as extra inputs (the full-scan view); use
/// [`CombSim::run_with_state`] to supply them, or [`CombSim::run`] to hold
/// them all at 0.
///
/// # Examples
///
/// ```
/// use socet_gate::{CombSim, GateKind, GateNetlistBuilder};
/// let mut b = GateNetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.gate2(GateKind::And2, x, y);
/// b.output("z", z);
/// let nl = b.build()?;
/// let sim = CombSim::new(&nl);
/// assert_eq!(sim.run(&[true, true]), vec![true]);
/// assert_eq!(sim.run(&[true, false]), vec![false]);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct CombSim<'a> {
    nl: &'a GateNetlist,
}

impl<'a> CombSim<'a> {
    /// Creates a simulator over `nl`.
    pub fn new(nl: &'a GateNetlist) -> Self {
        CombSim { nl }
    }

    /// Evaluates the netlist with flip-flops held at 0 and returns the
    /// primary-output values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn run(&self, inputs: &[bool]) -> Vec<bool> {
        let zeros = vec![false; self.nl.flip_flop_count()];
        self.run_with_state(inputs, &zeros).0
    }

    /// Evaluates the netlist with the given flip-flop state; returns
    /// `(primary outputs, next flip-flop state)`.
    ///
    /// # Panics
    ///
    /// Panics on input or state length mismatch.
    pub fn run_with_state(&self, inputs: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let values = self.eval_signals(inputs, state);
        let outs = self
            .nl
            .outputs()
            .iter()
            .map(|(_, s)| values[s.index()])
            .collect();
        let next = self
            .nl
            .flip_flops()
            .iter()
            .map(|q| values[self.nl.gate(*q).operands()[0].index()])
            .collect();
        (outs, next)
    }

    /// Evaluates every signal; the result is indexed by [`SignalId::index`].
    ///
    /// # Panics
    ///
    /// Panics on input or state length mismatch.
    pub fn eval_signals(&self, inputs: &[bool], state: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input length");
        assert_eq!(state.len(), self.nl.flip_flop_count(), "state length");
        let mut v = vec![false; self.nl.gates().len()];
        for ((_, s), val) in self.nl.inputs().iter().zip(inputs) {
            v[s.index()] = *val;
        }
        for (q, val) in self.nl.flip_flops().iter().zip(state) {
            v[q.index()] = *val;
        }
        for (i, g) in self.nl.gates().iter().enumerate() {
            if g.kind == GateKind::Const1 {
                v[i] = true;
            }
        }
        for s in self.nl.topo_order() {
            let g = self.nl.gate(*s);
            let ops = g.operands();
            v[s.index()] = match g.kind {
                GateKind::Not => !v[ops[0].index()],
                GateKind::Buf => v[ops[0].index()],
                GateKind::And2 => v[ops[0].index()] & v[ops[1].index()],
                GateKind::Or2 => v[ops[0].index()] | v[ops[1].index()],
                GateKind::Nand2 => !(v[ops[0].index()] & v[ops[1].index()]),
                GateKind::Nor2 => !(v[ops[0].index()] | v[ops[1].index()]),
                GateKind::Xor2 => v[ops[0].index()] ^ v[ops[1].index()],
                GateKind::Xnor2 => !(v[ops[0].index()] ^ v[ops[1].index()]),
                GateKind::Mux2 => {
                    if v[ops[0].index()] {
                        v[ops[2].index()]
                    } else {
                        v[ops[1].index()]
                    }
                }
                _ => unreachable!("topo order holds only combinational gates"),
            };
        }
        v
    }
}

/// 64-way bit-parallel pattern simulator: each signal carries a `u64` whose
/// bit *k* is the value under pattern *k*.
///
/// Supports single-stuck-at fault injection, which makes it the engine of
/// the parallel-pattern fault simulator in `socet-atpg`.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateKind, GateNetlistBuilder, PackedSim};
/// let mut b = GateNetlistBuilder::new("inv");
/// let a = b.input("a");
/// let y = b.gate1(GateKind::Not, a);
/// b.output("y", y);
/// let nl = b.build()?;
/// let sim = PackedSim::new(&nl);
/// let values = sim.eval(&[0b01u64], &[], None);
/// assert_eq!(values[y.index()] & 0b11, 0b10);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct PackedSim<'a> {
    nl: &'a GateNetlist,
}

impl<'a> PackedSim<'a> {
    /// Creates a packed simulator over `nl`.
    pub fn new(nl: &'a GateNetlist) -> Self {
        PackedSim { nl }
    }

    /// Evaluates every signal under up to 64 patterns at once.
    ///
    /// `pi[i]` is the packed value of the *i*-th primary input, `ff[j]` of
    /// the *j*-th flip-flop Q. When `fault` is `Some((s, stuck))`, signal `s`
    /// is forced to all-`stuck` before its fanout reads it.
    ///
    /// # Panics
    ///
    /// Panics on input or state length mismatch.
    pub fn eval(&self, pi: &[u64], ff: &[u64], fault: Option<(SignalId, bool)>) -> Vec<u64> {
        let mut v = Vec::new();
        self.eval_into(pi, ff, fault, &mut v);
        v
    }

    /// Like [`PackedSim::eval`] but writes into a caller-owned buffer, so a
    /// hot loop (e.g. the fault simulator's per-block good-value pass) can
    /// reuse one allocation across calls.
    ///
    /// # Panics
    ///
    /// Panics on input or state length mismatch.
    pub fn eval_into(
        &self,
        pi: &[u64],
        ff: &[u64],
        fault: Option<(SignalId, bool)>,
        v: &mut Vec<u64>,
    ) {
        assert_eq!(pi.len(), self.nl.inputs().len(), "input length");
        assert_eq!(ff.len(), self.nl.flip_flop_count(), "state length");
        v.clear();
        v.resize(self.nl.gates().len(), 0);
        for ((_, s), val) in self.nl.inputs().iter().zip(pi) {
            v[s.index()] = *val;
        }
        for (q, val) in self.nl.flip_flops().iter().zip(ff) {
            v[q.index()] = *val;
        }
        for (i, g) in self.nl.gates().iter().enumerate() {
            if g.kind == GateKind::Const1 {
                v[i] = u64::MAX;
            }
        }
        let force = |v: &mut Vec<u64>, s: SignalId, stuck: bool| {
            v[s.index()] = if stuck { u64::MAX } else { 0 };
        };
        if let Some((s, stuck)) = fault {
            // Faults on inputs/FFs/constants take effect immediately; faults
            // on combinational gates are applied when the gate is evaluated.
            let kind = self.nl.gate(s).kind;
            if matches!(
                kind,
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
            ) {
                force(v, s, stuck);
            }
        }
        for s in self.nl.topo_order() {
            let g = self.nl.gate(*s);
            let ops = g.operands();
            let val = match g.kind {
                GateKind::Not => !v[ops[0].index()],
                GateKind::Buf => v[ops[0].index()],
                GateKind::And2 => v[ops[0].index()] & v[ops[1].index()],
                GateKind::Or2 => v[ops[0].index()] | v[ops[1].index()],
                GateKind::Nand2 => !(v[ops[0].index()] & v[ops[1].index()]),
                GateKind::Nor2 => !(v[ops[0].index()] | v[ops[1].index()]),
                GateKind::Xor2 => v[ops[0].index()] ^ v[ops[1].index()],
                GateKind::Xnor2 => !(v[ops[0].index()] ^ v[ops[1].index()]),
                GateKind::Mux2 => {
                    let sel = v[ops[0].index()];
                    (!sel & v[ops[1].index()]) | (sel & v[ops[2].index()])
                }
                _ => unreachable!("topo order holds only combinational gates"),
            };
            v[s.index()] = val;
            if let Some((fs, stuck)) = fault {
                if fs == *s {
                    force(v, *s, stuck);
                }
            }
        }
    }

    /// Packed primary-output values from a full signal vector.
    pub fn outputs(&self, values: &[u64]) -> Vec<u64> {
        self.nl
            .outputs()
            .iter()
            .map(|(_, s)| values[s.index()])
            .collect()
    }

    /// Packed next-state (DFF D) values from a full signal vector.
    pub fn next_state(&self, values: &[u64]) -> Vec<u64> {
        self.nl
            .flip_flops()
            .iter()
            .map(|q| values[self.nl.gate(*q).operands()[0].index()])
            .collect()
    }
}

/// A three-valued logic value: 0, 1 or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tri {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    #[default]
    X,
}

impl Tri {
    /// Converts a bool.
    pub fn from_bool(b: bool) -> Tri {
        if b {
            Tri::One
        } else {
            Tri::Zero
        }
    }

    /// The definite value, if any.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Tri::Zero => Some(false),
            Tri::One => Some(true),
            Tri::X => None,
        }
    }

    fn not(self) -> Tri {
        match self {
            Tri::Zero => Tri::One,
            Tri::One => Tri::Zero,
            Tri::X => Tri::X,
        }
    }

    fn and(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::Zero, _) | (_, Tri::Zero) => Tri::Zero,
            (Tri::One, Tri::One) => Tri::One,
            _ => Tri::X,
        }
    }

    fn or(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::One, _) | (_, Tri::One) => Tri::One,
            (Tri::Zero, Tri::Zero) => Tri::Zero,
            _ => Tri::X,
        }
    }

    fn xor(self, o: Tri) -> Tri {
        match (self, o) {
            (Tri::X, _) | (_, Tri::X) => Tri::X,
            (a, b) => Tri::from_bool(a != b),
        }
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tri::Zero => "0",
            Tri::One => "1",
            Tri::X => "X",
        })
    }
}

/// Three-valued sequential simulator with X-initialized flip-flops.
///
/// Used for the paper's "Orig." experiments: fault-simulating the un-DFT'd
/// chip against random sequential vectors, where state starts unknown.
///
/// # Examples
///
/// ```
/// use socet_gate::{GateNetlistBuilder, SeqSim, Tri};
/// let mut b = GateNetlistBuilder::new("dff");
/// let d = b.input("d");
/// let q = b.dff(d);
/// b.output("q", q);
/// let nl = b.build()?;
/// let mut sim = SeqSim::new(&nl);
/// // Q is X before the first clock.
/// assert_eq!(sim.step(&[Tri::One], None), vec![Tri::X]);
/// // After clocking in a 1, Q is 1.
/// assert_eq!(sim.step(&[Tri::Zero], None), vec![Tri::One]);
/// # Ok::<(), socet_gate::GateError>(())
/// ```
#[derive(Debug)]
pub struct SeqSim<'a> {
    nl: &'a GateNetlist,
    state: Vec<Tri>,
}

impl<'a> SeqSim<'a> {
    /// Creates a simulator with all flip-flops at X.
    pub fn new(nl: &'a GateNetlist) -> Self {
        SeqSim {
            state: vec![Tri::X; nl.flip_flop_count()],
            nl,
        }
    }

    /// Creates a simulator with all flip-flops reset to 0 — the
    /// "after chip reset" premise of the sequential testability
    /// experiments.
    pub fn new_reset(nl: &'a GateNetlist) -> Self {
        SeqSim {
            state: vec![Tri::Zero; nl.flip_flop_count()],
            nl,
        }
    }

    /// Resets all flip-flops to X.
    pub fn reset(&mut self) {
        self.state.fill(Tri::X);
    }

    /// The current flip-flop state.
    pub fn state(&self) -> &[Tri] {
        &self.state
    }

    /// Applies one input vector, returns the primary outputs *before* the
    /// clock edge, then clocks the flip-flops. `fault` forces a signal to a
    /// stuck value throughout the cycle.
    ///
    /// # Panics
    ///
    /// Panics on input length mismatch.
    pub fn step(&mut self, inputs: &[Tri], fault: Option<(SignalId, bool)>) -> Vec<Tri> {
        assert_eq!(inputs.len(), self.nl.inputs().len(), "input length");
        let mut v = vec![Tri::X; self.nl.gates().len()];
        for ((_, s), val) in self.nl.inputs().iter().zip(inputs) {
            v[s.index()] = *val;
        }
        for (q, val) in self.nl.flip_flops().iter().zip(&self.state) {
            v[q.index()] = *val;
        }
        for (i, g) in self.nl.gates().iter().enumerate() {
            match g.kind {
                GateKind::Const0 => v[i] = Tri::Zero,
                GateKind::Const1 => v[i] = Tri::One,
                _ => {}
            }
        }
        if let Some((s, stuck)) = fault {
            let kind = self.nl.gate(s).kind;
            if matches!(
                kind,
                GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
            ) {
                v[s.index()] = Tri::from_bool(stuck);
            }
        }
        for s in self.nl.topo_order() {
            let g = self.nl.gate(*s);
            let ops = g.operands();
            let val = match g.kind {
                GateKind::Not => v[ops[0].index()].not(),
                GateKind::Buf => v[ops[0].index()],
                GateKind::And2 => v[ops[0].index()].and(v[ops[1].index()]),
                GateKind::Or2 => v[ops[0].index()].or(v[ops[1].index()]),
                GateKind::Nand2 => v[ops[0].index()].and(v[ops[1].index()]).not(),
                GateKind::Nor2 => v[ops[0].index()].or(v[ops[1].index()]).not(),
                GateKind::Xor2 => v[ops[0].index()].xor(v[ops[1].index()]),
                GateKind::Xnor2 => v[ops[0].index()].xor(v[ops[1].index()]).not(),
                GateKind::Mux2 => match v[ops[0].index()] {
                    Tri::Zero => v[ops[1].index()],
                    Tri::One => v[ops[2].index()],
                    Tri::X => {
                        let a = v[ops[1].index()];
                        let b = v[ops[2].index()];
                        if a == b {
                            a
                        } else {
                            Tri::X
                        }
                    }
                },
                _ => unreachable!("topo order holds only combinational gates"),
            };
            v[s.index()] = val;
            if let Some((fs, stuck)) = fault {
                if fs == *s {
                    v[s.index()] = Tri::from_bool(stuck);
                }
            }
        }
        let outs = self
            .nl
            .outputs()
            .iter()
            .map(|(_, s)| v[s.index()])
            .collect();
        for (i, q) in self.nl.flip_flops().iter().enumerate() {
            self.state[i] = v[self.nl.gate(*q).operands()[0].index()];
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateNetlistBuilder;

    fn full_adder() -> GateNetlist {
        let mut b = GateNetlistBuilder::new("fa");
        let a = b.input("a");
        let c = b.input("b");
        let cin = b.input("cin");
        let x = b.gate2(GateKind::Xor2, a, c);
        let sum = b.gate2(GateKind::Xor2, x, cin);
        let g1 = b.gate2(GateKind::And2, a, c);
        let g2 = b.gate2(GateKind::And2, x, cin);
        let cout = b.gate2(GateKind::Or2, g1, g2);
        b.output("sum", sum);
        b.output("cout", cout);
        b.build().unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        let sim = CombSim::new(&nl);
        for bits in 0..8u32 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let cin = bits & 4 != 0;
            let outs = sim.run(&[a, b, cin]);
            let total = a as u32 + b as u32 + cin as u32;
            assert_eq!(outs[0], total & 1 != 0, "sum for {bits:03b}");
            assert_eq!(outs[1], total >= 2, "cout for {bits:03b}");
        }
    }

    #[test]
    fn packed_sim_matches_comb_sim() {
        let nl = full_adder();
        let comb = CombSim::new(&nl);
        let packed = PackedSim::new(&nl);
        // Put all eight input combinations in one packed run.
        let mut pi = [0u64; 3];
        for pat in 0..8u64 {
            for (i, word) in pi.iter_mut().enumerate() {
                if pat >> i & 1 != 0 {
                    *word |= 1 << pat;
                }
            }
        }
        let values = packed.eval(&pi, &[], None);
        let outs = packed.outputs(&values);
        for pat in 0..8u64 {
            let scalar = comb.run(&[pat & 1 != 0, pat & 2 != 0, pat & 4 != 0]);
            assert_eq!(outs[0] >> pat & 1 != 0, scalar[0], "sum pattern {pat}");
            assert_eq!(outs[1] >> pat & 1 != 0, scalar[1], "cout pattern {pat}");
        }
    }

    #[test]
    fn packed_fault_injection_flips_output() {
        let nl = full_adder();
        let sim = PackedSim::new(&nl);
        // a=1, b=0, cin=0 -> sum=1. Stuck-at-0 on input a -> sum=0.
        let good = sim.eval(&[u64::MAX, 0, 0], &[], None);
        let a_sig = nl.inputs()[0].1;
        let bad = sim.eval(&[u64::MAX, 0, 0], &[], Some((a_sig, false)));
        assert_ne!(sim.outputs(&good)[0], sim.outputs(&bad)[0]);
    }

    #[test]
    fn comb_run_with_state_propagates_dffs() {
        let mut b = GateNetlistBuilder::new("shift2");
        let d = b.input("d");
        let q0 = b.dff(d);
        let q1 = b.dff(q0);
        b.output("q", q1);
        let nl = b.build().unwrap();
        let sim = CombSim::new(&nl);
        let (outs, next) = sim.run_with_state(&[true], &[false, true]);
        assert_eq!(outs, vec![true]); // q1's current state
        assert_eq!(next, vec![true, false]); // d -> q0, q0 -> q1
    }

    #[test]
    fn tri_algebra() {
        assert_eq!(Tri::X.not(), Tri::X);
        assert_eq!(Tri::Zero.and(Tri::X), Tri::Zero);
        assert_eq!(Tri::One.or(Tri::X), Tri::One);
        assert_eq!(Tri::X.and(Tri::One), Tri::X);
        assert_eq!(Tri::One.xor(Tri::One), Tri::Zero);
        assert_eq!(Tri::One.xor(Tri::X), Tri::X);
        assert_eq!(Tri::from_bool(true).to_bool(), Some(true));
        assert_eq!(Tri::X.to_bool(), None);
        assert_eq!(Tri::X.to_string(), "X");
    }

    #[test]
    fn seq_sim_x_resolution_through_mux() {
        // mux(s=X, a, a) should still be a.
        let mut b = GateNetlistBuilder::new("m");
        let s = b.input("s");
        let a = b.input("a");
        let m = b.mux(s, a, a);
        b.output("m", m);
        let nl = b.build().unwrap();
        let mut sim = SeqSim::new(&nl);
        assert_eq!(sim.step(&[Tri::X, Tri::One], None), vec![Tri::One]);
    }

    #[test]
    fn packed_sim_fault_on_comb_gate_applies_at_definition() {
        // Fault downstream consumers see the forced value; upstream is
        // unaffected.
        let mut b = GateNetlistBuilder::new("n");
        let a = b.input("a");
        let x = b.gate1(GateKind::Not, a);
        let y = b.gate1(GateKind::Not, x);
        b.output("x", x);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = PackedSim::new(&nl);
        let vals = sim.eval(&[0], &[], Some((x, false)));
        assert_eq!(vals[x.index()], 0, "fault site forced low");
        assert_eq!(vals[y.index()], u64::MAX, "consumer sees the fault");
    }

    #[test]
    fn comb_sim_constants() {
        let mut b = GateNetlistBuilder::new("n");
        let one = b.const1();
        let zero = b.const0();
        let x = b.gate2(GateKind::And2, one, zero);
        let y = b.gate2(GateKind::Or2, one, zero);
        b.output("x", x);
        b.output("y", y);
        let nl = b.build().unwrap();
        let sim = CombSim::new(&nl);
        assert_eq!(sim.run(&[]), vec![false, true]);
    }

    #[test]
    fn seq_sim_reset_state_constructor() {
        let mut b = GateNetlistBuilder::new("n");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let nl = b.build().unwrap();
        let mut sim = SeqSim::new_reset(&nl);
        // From reset, Q is a definite 0 on the first observation.
        assert_eq!(sim.step(&[Tri::One], None), vec![Tri::Zero]);
        assert_eq!(sim.step(&[Tri::Zero], None), vec![Tri::One]);
    }

    #[test]
    fn seq_sim_fault_on_dff() {
        let mut b = GateNetlistBuilder::new("dff");
        let d = b.input("d");
        let q = b.dff(d);
        b.output("q", q);
        let nl = b.build().unwrap();
        let mut sim = SeqSim::new(&nl);
        sim.step(&[Tri::One], None);
        // Stuck-at-0 on Q masks the captured 1.
        let outs = sim.step(&[Tri::Zero], Some((q, false)));
        assert_eq!(outs, vec![Tri::Zero]);
        // Without the fault the 1 is visible.
        sim.reset();
        sim.step(&[Tri::One], None);
        assert_eq!(sim.step(&[Tri::Zero], None), vec![Tri::One]);
    }
}
