//! Compact binary codec for [`GateNetlist`] — the gate-level slice of a
//! prepared-core artifact.
//!
//! The encoding is positional and little-endian (see
//! [`socet_cells::codec`]): gate kinds as one byte, operands as dense
//! `u32` signal indices, and the cached topological order verbatim so a
//! decoded netlist is field-for-field identical to the one encoded —
//! including evaluation order, which the fault simulator's determinism
//! depends on. Decoding validates shape (operand bounds, arity-consistent
//! sentinels) but not acyclicity; the artifact store guards whole-file
//! integrity with a checksum and treats any failure as a cache miss.

use crate::netlist::{Gate, GateKind, GateNetlist, SignalId};
use socet_cells::{CodecError, Dec, Enc};

fn kind_tag(kind: GateKind) -> u8 {
    match kind {
        GateKind::Const0 => 0,
        GateKind::Const1 => 1,
        GateKind::Input => 2,
        GateKind::Dff => 3,
        GateKind::Not => 4,
        GateKind::Buf => 5,
        GateKind::And2 => 6,
        GateKind::Or2 => 7,
        GateKind::Nand2 => 8,
        GateKind::Nor2 => 9,
        GateKind::Xor2 => 10,
        GateKind::Xnor2 => 11,
        GateKind::Mux2 => 12,
    }
}

fn kind_from_tag(tag: u8) -> Result<GateKind, CodecError> {
    Ok(match tag {
        0 => GateKind::Const0,
        1 => GateKind::Const1,
        2 => GateKind::Input,
        3 => GateKind::Dff,
        4 => GateKind::Not,
        5 => GateKind::Buf,
        6 => GateKind::And2,
        7 => GateKind::Or2,
        8 => GateKind::Nand2,
        9 => GateKind::Nor2,
        10 => GateKind::Xor2,
        11 => GateKind::Xnor2,
        12 => GateKind::Mux2,
        _ => return Err(CodecError::Corrupt("gate kind out of range")),
    })
}

/// Encodes `nl` into `e`.
pub fn encode_netlist(nl: &GateNetlist, e: &mut Enc) {
    e.put_str(&nl.name);
    e.put_usize(nl.gates.len());
    for g in &nl.gates {
        e.put_u8(kind_tag(g.kind));
        for op in g.operands() {
            e.put_u32(op.index() as u32);
        }
    }
    e.put_usize(nl.inputs.len());
    for (name, s) in &nl.inputs {
        e.put_str(name);
        e.put_u32(s.index() as u32);
    }
    e.put_usize(nl.outputs.len());
    for (name, s) in &nl.outputs {
        e.put_str(name);
        e.put_u32(s.index() as u32);
    }
    e.put_usize(nl.topo.len());
    for s in &nl.topo {
        e.put_u32(s.index() as u32);
    }
}

fn get_signal(d: &mut Dec, gate_count: usize) -> Result<SignalId, CodecError> {
    let idx = d.get_u32()? as usize;
    if idx >= gate_count {
        return Err(CodecError::Corrupt("signal index out of range"));
    }
    Ok(SignalId::from_index(idx))
}

/// Decodes a netlist written by [`encode_netlist`].
pub fn decode_netlist(d: &mut Dec) -> Result<GateNetlist, CodecError> {
    let name = d.get_str()?;
    let gate_count = d.get_usize()?;
    // Every gate costs at least one byte, so a count beyond the remaining
    // buffer is corrupt — reject it before reserving any memory for it.
    if gate_count > d.remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut gates = Vec::with_capacity(gate_count.min(1 << 24));
    for _ in 0..gate_count {
        let kind = kind_from_tag(d.get_u8()?)?;
        let mut ops = [SignalId::NONE; 3];
        for op in ops.iter_mut().take(kind.arity()) {
            // A DFF's D operand may point forward (sequential feedback), so
            // operand indices are only bounded by the gate count, not by
            // position.
            let idx = d.get_u32()? as usize;
            if idx >= gate_count {
                return Err(CodecError::Corrupt("gate operand out of range"));
            }
            *op = SignalId::from_index(idx);
        }
        gates.push(Gate { kind, ops });
    }
    let input_count = d.get_usize()?;
    if input_count > d.remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut inputs = Vec::with_capacity(input_count.min(1 << 20));
    for _ in 0..input_count {
        let name = d.get_str()?;
        inputs.push((name, get_signal(d, gate_count)?));
    }
    let output_count = d.get_usize()?;
    if output_count > d.remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut outputs = Vec::with_capacity(output_count.min(1 << 20));
    for _ in 0..output_count {
        let name = d.get_str()?;
        outputs.push((name, get_signal(d, gate_count)?));
    }
    let topo_count = d.get_usize()?;
    if topo_count > gate_count {
        return Err(CodecError::Corrupt("topo order longer than gate list"));
    }
    let mut topo = Vec::with_capacity(topo_count);
    for _ in 0..topo_count {
        topo.push(get_signal(d, gate_count)?);
    }
    Ok(GateNetlist {
        name,
        gates,
        inputs,
        outputs,
        topo,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GateNetlistBuilder;
    use crate::sim::CombSim;

    fn sample() -> GateNetlist {
        let mut b = GateNetlistBuilder::new("sample");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.gate2(GateKind::Xor2, a, c);
        let q = b.dff(x);
        let m = b.mux(a, c, q);
        b.output("m", m);
        b.build().unwrap()
    }

    fn assert_netlists_identical(a: &GateNetlist, b: &GateNetlist) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.gates(), b.gates());
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.outputs(), b.outputs());
        assert_eq!(a.topo_order(), b.topo_order());
    }

    #[test]
    fn netlist_round_trips_exactly() {
        let nl = sample();
        let mut e = Enc::new();
        encode_netlist(&nl, &mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = decode_netlist(&mut d).unwrap();
        assert!(d.is_empty());
        assert_netlists_identical(&nl, &back);
        // The decoded netlist simulates like the original.
        let sim_a = CombSim::new(&nl);
        let sim_b = CombSim::new(&back);
        assert_eq!(sim_a.run(&[true, false]), sim_b.run(&[true, false]));
    }

    #[test]
    fn encoding_is_deterministic() {
        let nl = sample();
        let enc = |nl: &GateNetlist| {
            let mut e = Enc::new();
            encode_netlist(nl, &mut e);
            e.into_bytes()
        };
        assert_eq!(enc(&nl), enc(&nl.clone()));
    }

    #[test]
    fn out_of_range_operand_is_corrupt() {
        let nl = sample();
        let mut e = Enc::new();
        encode_netlist(&nl, &mut e);
        let mut bytes = e.into_bytes();
        // Truncating anywhere must error, never panic.
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            let mut d = Dec::new(&bytes[..cut]);
            assert!(decode_netlist(&mut d).is_err());
        }
        // Blow up the gate count so the first operand is out of range.
        let name_len = 8 + "sample".len();
        bytes[name_len] = 0xff;
        let mut d = Dec::new(&bytes);
        assert!(decode_netlist(&mut d).is_err());
    }
}
