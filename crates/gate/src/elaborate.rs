//! Elaboration: deterministic decomposition of an RTL [`Core`] into a
//! [`GateNetlist`].
//!
//! This is the workspace's stand-in for the paper's in-house synthesis /
//! technology-mapping tool. The rules are fixed and documented so that cell
//! counts are reproducible:
//!
//! * each register bit → one [`GateKind::Dff`];
//! * a sink with *n* drivers → a chain of *n−1* [`GateKind::Mux2`] per bit,
//!   steered by shared select inputs (one per extra driver, modeling the
//!   core's control lines);
//! * functional units → ripple adders/subtracters, comparator trees, mux
//!   shifters, ALUs (adder + logic + result mux), or seeded pseudo-random
//!   gate networks for uninterpreted control logic;
//! * unconnected sink bits → constant 0; registers with no driver hold
//!   their value (D = Q).

use crate::netlist::{GateError, GateKind, GateNetlist, GateNetlistBuilder, SignalId};
use socet_rtl::{Core, FuKind, FunctionalUnitId, PortId, RegisterId, RtlNode, Via};
use std::collections::HashMap;

/// The result of elaborating a core: the netlist plus the RTL↔gate bit maps
/// ATPG and the DFT engines need.
#[derive(Debug, Clone)]
pub struct Elaborated {
    /// The gate-level netlist.
    pub netlist: GateNetlist,
    /// Per input port (indexed like `core.ports()`), the input signal of
    /// each bit; empty for output ports.
    pub input_bits: Vec<Vec<SignalId>>,
    /// Per output port, the output signal of each bit; empty for inputs.
    pub output_bits: Vec<Vec<SignalId>>,
    /// Per register, the Q signal of each bit.
    pub reg_bits: Vec<Vec<SignalId>>,
}

/// Options controlling [`elaborate_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElabOptions {
    /// Model each register with a load-enable input (`en_<reg>`): the
    /// register holds unless its enable is asserted, costing one extra mux
    /// per bit. The core-level (full-scan) view leaves this off — scan mode
    /// forces loading — but the flattened-chip experiments turn it on so
    /// the un-DFT'd chip shows realistic FSM-gated state, not free-running
    /// pipelines.
    pub load_enables: bool,
}

/// Elaborates `core` into gates.
///
/// The decomposition is purely structural and deterministic: elaborating the
/// same core twice yields identical netlists.
///
/// # Errors
///
/// Returns [`GateError`] if the decomposed netlist is malformed — in
/// practice only [`GateError::CombinationalLoop`] for pathological cores
/// whose functional units feed each other combinationally.
///
/// # Examples
///
/// ```
/// use socet_rtl::{CoreBuilder, Direction};
/// use socet_gate::elaborate;
/// let mut b = CoreBuilder::new("buf");
/// let i = b.port("i", Direction::In, 8)?;
/// let o = b.port("o", Direction::Out, 8)?;
/// let r = b.register("r", 8)?;
/// b.connect_port_to_reg(i, r)?;
/// b.connect_reg_to_port(r, o)?;
/// let core = b.build()?;
/// let elab = elaborate(&core)?;
/// assert_eq!(elab.netlist.flip_flop_count(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn elaborate(core: &Core) -> Result<Elaborated, GateError> {
    elaborate_with(core, &ElabOptions::default())
}

/// Elaborates `core` with explicit [`ElabOptions`].
///
/// # Errors
///
/// Same as [`elaborate`].
pub fn elaborate_with(core: &Core, opts: &ElabOptions) -> Result<Elaborated, GateError> {
    let _span = socet_obs::span(socet_obs::names::ELABORATE);
    let mut e = Elaborator::new(core);
    e.opts = *opts;
    let elab = e.run()?;
    socet_obs::add(
        socet_obs::Counter::GatesElaborated,
        elab.netlist.gates().len() as u64,
    );
    Ok(elab)
}

struct Elaborator<'a> {
    core: &'a Core,
    opts: ElabOptions,
    b: GateNetlistBuilder,
    input_bits: Vec<Vec<SignalId>>,
    output_bits: Vec<Vec<SignalId>>,
    reg_bits: Vec<Vec<SignalId>>,
    fu_out: HashMap<usize, Vec<SignalId>>,
    /// Shared mux select per (sink node, driver ordinal).
    selects: HashMap<(RtlNode, usize), SignalId>,
}

impl<'a> Elaborator<'a> {
    fn new(core: &'a Core) -> Self {
        Elaborator {
            core,
            opts: ElabOptions::default(),
            b: GateNetlistBuilder::new(core.name()),
            input_bits: vec![Vec::new(); core.ports().len()],
            output_bits: vec![Vec::new(); core.ports().len()],
            reg_bits: Vec::new(),
            fu_out: HashMap::new(),
            selects: HashMap::new(),
        }
    }

    fn run(mut self) -> Result<Elaborated, GateError> {
        // 1. Primary inputs.
        for (i, port) in self.core.ports().iter().enumerate() {
            if port.direction() == socet_rtl::Direction::In {
                let sigs = (0..port.width())
                    .map(|bit| self.b.input(&format!("{}[{bit}]", port.name())))
                    .collect();
                self.input_bits[i] = sigs;
            }
        }
        // 2. Flip-flops (D deferred).
        for reg in self.core.registers() {
            let sigs: Vec<SignalId> = (0..reg.width()).map(|_| self.b.dff_deferred()).collect();
            self.reg_bits.push(sigs);
        }
        // 3. Functional units, in dependency-free order (operands are
        // registers or ports, both already defined).
        let fu_ids: Vec<FunctionalUnitId> = self.core.functional_unit_ids().collect();
        for id in &fu_ids {
            let outs = self.elaborate_fu(*id);
            self.fu_out.insert(id.index(), outs);
        }
        // 4. Register D inputs.
        let reg_ids: Vec<RegisterId> = self.core.register_ids().collect();
        for (ri, reg_handle) in reg_ids.iter().enumerate() {
            let node = RtlNode::Reg(*reg_handle);
            let width = self.core.registers()[ri].width();
            let enable = if self.opts.load_enables {
                Some(
                    self.b
                        .input(&format!("en_{}", self.core.registers()[ri].name())),
                )
            } else {
                None
            };
            for bit in 0..width {
                let q = self.reg_bits[ri][bit as usize];
                let d = self.driver_expr(node, bit).unwrap_or(q); // no driver: hold
                let d = match enable {
                    Some(en) if d != q => self.b.mux(en, q, d),
                    _ => d,
                };
                self.b.set_dff_input(q, d);
            }
        }
        // 5. Output ports.
        let port_ids: Vec<PortId> = self.core.port_ids().collect();
        for (pi, port_handle) in port_ids.iter().enumerate() {
            let port = &self.core.ports()[pi];
            if port.direction() != socet_rtl::Direction::Out {
                continue;
            }
            let node = RtlNode::Port(*port_handle);
            let mut sigs = Vec::with_capacity(port.width() as usize);
            for bit in 0..port.width() {
                let d = match self.driver_expr(node, bit) {
                    Some(s) => s,
                    None => self.b.const0(),
                };
                let buf = self.b.gate1(GateKind::Buf, d);
                self.b.output(&format!("{}[{bit}]", port.name()), buf);
                sigs.push(buf);
            }
            self.output_bits[pi] = sigs;
        }
        let netlist = self.b.build()?;
        Ok(Elaborated {
            netlist,
            input_bits: self.input_bits,
            output_bits: self.output_bits,
            reg_bits: self.reg_bits,
        })
    }

    /// Signal of `node`'s bit `bit` when `node` is a source (input port,
    /// register Q, or FU output).
    fn source_bit(&self, node: RtlNode, bit: u16) -> SignalId {
        match node {
            RtlNode::Port(p) => self.input_bits[p.index()][bit as usize],
            RtlNode::Reg(r) => self.reg_bits[r.index()][bit as usize],
            RtlNode::Fu(u) => {
                let outs = &self.fu_out[&u.index()];
                outs[(bit as usize).min(outs.len() - 1)]
            }
        }
    }

    /// Builds the driver expression for one bit of a sink node from all
    /// connections that cover it, folding multiple drivers into a shared-
    /// select mux chain. Returns `None` when nothing drives the bit.
    fn driver_expr(&mut self, sink: RtlNode, bit: u16) -> Option<SignalId> {
        // Gather (ordinal, source signal) pairs for drivers covering `bit`.
        let mut drivers: Vec<(usize, RtlNode, u16, Via)> = Vec::new();
        for (ci, c) in self.core.connections().iter().enumerate() {
            if c.dst.node != sink || !c.dst.range.contains_bit(bit) {
                continue;
            }
            let offset = bit - c.dst.range.lsb();
            let src_bit = c.src.range.lsb() + offset;
            drivers.push((ci, c.src.node, src_bit, c.via));
        }
        if drivers.is_empty() {
            return None;
        }
        // Canonical order: by connection index (declaration order).
        drivers.sort_by_key(|d| d.0);
        let mut expr: Option<SignalId> = None;
        for (ordinal, (ci, src_node, src_bit, via)) in drivers.iter().enumerate() {
            let src_sig = match via {
                Via::ThroughFu(fu) => {
                    let outs = &self.fu_out[&fu.index()];
                    outs[(*src_bit as usize).min(outs.len() - 1)]
                }
                _ => self.source_bit(*src_node, *src_bit),
            };
            expr = Some(match expr {
                None => src_sig,
                Some(prev) => {
                    let sel = *self.selects.entry((sink, *ci)).or_insert_with(|| {
                        self.b
                            .input(&format!("sel_{}_{}", self.core.name_of(sink), ordinal))
                    });
                    self.b.mux(sel, prev, src_sig)
                }
            });
        }
        expr
    }

    /// Elaborates one functional unit; returns its output bit signals.
    fn elaborate_fu(&mut self, fu: FunctionalUnitId) -> Vec<SignalId> {
        let unit = &self.core.functional_units()[fu.index()];
        let w = unit.width() as usize;
        let name = unit.name().to_owned();
        // Operand sources: explicit fan-in connections plus ThroughFu users.
        let mut sources: Vec<Vec<SignalId>> = Vec::new();
        for c in self.core.connections() {
            let feeds = match c.via {
                Via::ThroughFu(f) if f == fu => true,
                _ => matches!(c.dst.node, RtlNode::Fu(f) if f == fu),
            };
            if !feeds {
                continue;
            }
            let sigs: Vec<SignalId> = c
                .src
                .range
                .bits()
                .map(|bit| self.source_bit(c.src.node, bit))
                .collect();
            sources.push(sigs);
        }
        let zero = self.b.const0();
        let take =
            |sources: &[Vec<SignalId>], i: usize, w: usize, zero: SignalId| -> Vec<SignalId> {
                let mut v = sources.get(i).cloned().unwrap_or_default();
                while v.len() < w {
                    v.push(zero);
                }
                v.truncate(w);
                v
            };
        let a = take(&sources, 0, w, zero);
        let bops = if sources.len() > 1 {
            take(&sources, 1, w, zero)
        } else {
            a.clone()
        };
        match unit.kind() {
            FuKind::Add => self.ripple_add(&a, &bops, false),
            FuKind::Sub => self.ripple_add(&a, &bops, true),
            FuKind::Inc => {
                let ones: Vec<SignalId> = {
                    let one = self.b.const1();
                    let mut v = vec![one];
                    v.resize(w, zero);
                    v
                };
                self.ripple_add(&a, &ones, false)
            }
            FuKind::Cmp => {
                let eq_bits: Vec<SignalId> = a
                    .iter()
                    .zip(&bops)
                    .map(|(&x, &y)| self.b.gate2(GateKind::Xnor2, x, y))
                    .collect();
                let eq = self.b.tree(GateKind::And2, &eq_bits);
                let mut outs = vec![eq];
                outs.resize(w, zero);
                outs
            }
            FuKind::Logic => a
                .iter()
                .zip(&bops)
                .map(|(&x, &y)| self.b.gate2(GateKind::And2, x, y))
                .collect(),
            FuKind::Shift => {
                // Left shift by one, with a mux per bit selecting shifted or
                // unshifted under a shared control input.
                let sel = self.b.input(&format!("shift_{name}_en"));
                (0..w)
                    .map(|i| {
                        let shifted = if i == 0 { zero } else { a[i - 1] };
                        self.b.mux(sel, a[i], shifted)
                    })
                    .collect()
            }
            FuKind::Alu => {
                let sum = self.ripple_add(&a, &bops, false);
                let logic: Vec<SignalId> = a
                    .iter()
                    .zip(&bops)
                    .map(|(&x, &y)| self.b.gate2(GateKind::And2, x, y))
                    .collect();
                let op = self.b.input(&format!("alu_{name}_op"));
                sum.iter()
                    .zip(&logic)
                    .map(|(&s, &l)| self.b.mux(op, s, l))
                    .collect()
            }
            FuKind::Random { gates } => self.random_network(&name, &a, &bops, w, gates),
        }
    }

    /// Ripple-carry adder (or subtracter when `sub`); returns sum bits.
    fn ripple_add(&mut self, a: &[SignalId], b: &[SignalId], sub: bool) -> Vec<SignalId> {
        let mut carry = if sub {
            self.b.const1()
        } else {
            self.b.const0()
        };
        let mut out = Vec::with_capacity(a.len());
        for (&x, &yraw) in a.iter().zip(b) {
            let y = if sub {
                self.b.gate1(GateKind::Not, yraw)
            } else {
                yraw
            };
            let p = self.b.gate2(GateKind::Xor2, x, y);
            let s = self.b.gate2(GateKind::Xor2, p, carry);
            let g1 = self.b.gate2(GateKind::And2, x, y);
            let g2 = self.b.gate2(GateKind::And2, p, carry);
            carry = self.b.gate2(GateKind::Or2, g1, g2);
            out.push(s);
        }
        out
    }

    /// Deterministic pseudo-random gate network for uninterpreted logic.
    fn random_network(
        &mut self,
        name: &str,
        a: &[SignalId],
        b: &[SignalId],
        w: usize,
        gates: u32,
    ) -> Vec<SignalId> {
        let mut seed = 0xcbf29ce484222325u64;
        for byte in name.bytes() {
            seed = (seed ^ u64::from(byte)).wrapping_mul(0x100000001b3);
        }
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Build the block as `w` XOR trees over distinct two-input leaf
        // gates. A fault at any leaf or tree node propagates to the tree
        // root unconditionally (XOR has no controlling value), and leaves
        // with distinct (kind, operand-pair) combinations never cancel each
        // other out — so the block stays almost fully testable, like real
        // synthesized control logic. Naive random gate soups or mixing
        // chains with reused side operands are 30–70% redundant and would
        // sink the chip's fault coverage far below the paper's ~98% regime.
        let mut pool: Vec<SignalId> = Vec::new();
        for s in a.iter().chain(b.iter()) {
            if !pool.contains(s) {
                pool.push(*s);
            }
        }
        if pool.is_empty() {
            pool.push(self.b.const0());
        }
        let n = pool.len();
        let leaf_kinds = [
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
        ];
        // Enumerate distinct (kind, i<j operand pair) leaf combinations in a
        // shuffled-by-seed but collision-free order.
        let pair_count = if n > 1 { n * (n - 1) / 2 } else { 1 };
        let combos = pair_count * leaf_kinds.len();
        let stride = (rng() as usize % combos) | 1;
        let mut combo_idx = rng() as usize % combos;
        let leaves_per_tree = ((gates as usize / w).max(2) / 2).max(1);
        let mut outs = Vec::with_capacity(w);
        for _ in 0..w {
            let mut leaves = Vec::with_capacity(leaves_per_tree);
            for _ in 0..leaves_per_tree {
                combo_idx = (combo_idx + stride) % combos;
                let kind = leaf_kinds[combo_idx % leaf_kinds.len()];
                let mut pair = combo_idx / leaf_kinds.len();
                // Decode the pair index into (i, j) with i < j.
                let (mut pi, mut pj) = (0usize, 1usize);
                if n > 1 {
                    'outer: for i in 0..n - 1 {
                        for j in i + 1..n {
                            if pair == 0 {
                                pi = i;
                                pj = j;
                                break 'outer;
                            }
                            pair -= 1;
                        }
                    }
                } else {
                    pj = 0;
                }
                leaves.push(self.b.gate2(kind, pool[pi], pool[pj.min(n - 1)]));
            }
            outs.push(self.b.tree(GateKind::Xor2, &leaves));
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CombSim;
    use socet_rtl::{BitRange, CoreBuilder, Direction};

    fn pipeline_core() -> Core {
        let mut b = CoreBuilder::new("pipe");
        let i = b.port("i", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r1 = b.register("r1", 4).unwrap();
        let r2 = b.register("r2", 4).unwrap();
        b.connect_port_to_reg(i, r1).unwrap();
        b.connect_reg_to_reg(r1, r2).unwrap();
        b.connect_reg_to_port(r2, o).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pipeline_elaborates_to_dffs_and_buffers() {
        let core = pipeline_core();
        let e = elaborate(&core).unwrap();
        assert_eq!(e.netlist.flip_flop_count(), 8);
        assert_eq!(e.netlist.inputs().len(), 4);
        assert_eq!(e.netlist.outputs().len(), 4);
        // Data flows i -> r1 -> r2 -> o over two clocks.
        let sim = CombSim::new(&e.netlist);
        let (outs, next) = sim.run_with_state(&[true, false, true, false], &[false; 8]);
        assert_eq!(outs, vec![false; 4]);
        // r1 captured the input.
        assert_eq!(&next[0..4], &[true, false, true, false]);
    }

    #[test]
    fn mux_sinks_get_shared_selects() {
        let mut b = CoreBuilder::new("m");
        let i = b.port("i", Direction::In, 4).unwrap();
        let j = b.port("j", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let r = b.register("r", 4).unwrap();
        b.connect_mux(RtlNode::Port(i), RtlNode::Reg(r), 0).unwrap();
        b.connect_mux(RtlNode::Port(j), RtlNode::Reg(r), 1).unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        let e = elaborate(&core).unwrap();
        // 8 data inputs + 1 shared select.
        assert_eq!(e.netlist.inputs().len(), 9);
        let muxes = e
            .netlist
            .gates()
            .iter()
            .filter(|g| g.kind == GateKind::Mux2)
            .count();
        assert_eq!(muxes, 4);
    }

    #[test]
    fn adder_fu_computes_sum() {
        let mut b = CoreBuilder::new("addcore");
        let i = b.port("i", Direction::In, 4).unwrap();
        let j = b.port("j", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 4).unwrap();
        let ra = b.register("ra", 4).unwrap();
        let rb = b.register("rb", 4).unwrap();
        let rs = b.register("rs", 4).unwrap();
        let add = b.functional_unit("add0", FuKind::Add, 4).unwrap();
        b.connect_port_to_reg(i, ra).unwrap();
        b.connect_port_to_reg(j, rb).unwrap();
        b.connect_reg_to_fu(ra, add).unwrap();
        b.connect_reg_to_fu(rb, add).unwrap();
        b.connect_fu_to_reg(add, rs).unwrap();
        b.connect_reg_to_port(rs, o).unwrap();
        let core = b.build().unwrap();
        let e = elaborate(&core).unwrap();
        let sim = CombSim::new(&e.netlist);
        // State: ra=3, rb=5, rs=0 -> next rs must be 8.
        let mut state = vec![false; 12];
        state[0] = true; // ra[0]
        state[1] = true; // ra[1]
        state[4] = true; // rb[0]
        state[6] = true; // rb[2]
        let (_, next) = sim.run_with_state(&[false; 8], &state);
        let rs_val: u32 = (0..4).map(|k| (next[8 + k] as u32) << k).sum();
        assert_eq!(rs_val, 8);
    }

    #[test]
    fn sliced_drivers_reach_the_right_bits() {
        let mut b = CoreBuilder::new("slice");
        let lo = b.port("lo", Direction::In, 4).unwrap();
        let hi = b.port("hi", Direction::In, 4).unwrap();
        let o = b.port("o", Direction::Out, 8).unwrap();
        let r = b.register("r", 8).unwrap();
        b.connect_slice(
            RtlNode::Port(lo),
            BitRange::full(4),
            RtlNode::Reg(r),
            BitRange::new(0, 3),
        )
        .unwrap();
        b.connect_slice(
            RtlNode::Port(hi),
            BitRange::full(4),
            RtlNode::Reg(r),
            BitRange::new(4, 7),
        )
        .unwrap();
        b.connect_reg_to_port(r, o).unwrap();
        let core = b.build().unwrap();
        let e = elaborate(&core).unwrap();
        let sim = CombSim::new(&e.netlist);
        // lo = 0b1010, hi = 0b0001 -> r next = 0b0001_1010.
        let inputs = [false, true, false, true, true, false, false, false];
        let (_, next) = sim.run_with_state(&inputs, &[false; 8]);
        let val: u32 = (0..8).map(|k| (next[k] as u32) << k).sum();
        assert_eq!(val, 0b0001_1010);
    }

    #[test]
    fn random_network_is_deterministic() {
        let build = || {
            let mut b = CoreBuilder::new("rnd");
            let i = b.port("i", Direction::In, 4).unwrap();
            let o = b.port("o", Direction::Out, 4).unwrap();
            let r = b.register("r", 4).unwrap();
            let blob = b
                .functional_unit("ctl", FuKind::Random { gates: 30 }, 4)
                .unwrap();
            b.connect_port_to_fu(i, blob).unwrap();
            b.connect_fu_to_reg(blob, r).unwrap();
            b.connect_reg_to_port(r, o).unwrap();
            b.build().unwrap()
        };
        let e1 = elaborate(&build()).unwrap();
        let e2 = elaborate(&build()).unwrap();
        assert_eq!(e1.netlist.gates().len(), e2.netlist.gates().len());
        let s1 = CombSim::new(&e1.netlist);
        let s2 = CombSim::new(&e2.netlist);
        let ins = [true, false, true, true];
        assert_eq!(
            s1.run_with_state(&ins, &[false; 4]).1,
            s2.run_with_state(&ins, &[false; 4]).1
        );
    }

    #[test]
    fn unconnected_register_holds() {
        // A register with fanout but no fan-in must hold (D = Q).
        let mut b = CoreBuilder::new("hold");
        let i = b.port("i", Direction::In, 1).unwrap();
        let o = b.port("o", Direction::Out, 1).unwrap();
        let sink = b.register("sink", 1).unwrap();
        let holder = b.register("holder", 1).unwrap();
        b.connect_port_to_reg(i, sink).unwrap();
        b.connect_reg_to_port(holder, o).unwrap();
        // give `sink` a fanout so it is not dangling, and holder stays
        // driverless.
        b.connect_reg_to_reg(sink, holder).unwrap();
        let core = b.build().unwrap();
        let e = elaborate(&core).unwrap();
        assert_eq!(e.netlist.flip_flop_count(), 2);
    }

    #[test]
    fn area_matches_structural_estimate_for_simple_cores() {
        use socet_cells::CellLibrary;
        let core = pipeline_core();
        let e = elaborate(&core).unwrap();
        // 8 DFFs, no muxes, buffers are free.
        assert_eq!(e.netlist.area().cells(&CellLibrary::generic_08um()), 8);
        assert_eq!(socet_rtl::stats::estimate_area_cells(&core), 8);
    }
}
