//! Criterion bench: the content-addressed preparation pipeline against the
//! plain serial flow — cold, memoized (repeated cores), and disk-warm.
//!
//! The acceptance bar for the pipeline: a warm disk-cache run beats the
//! cold serial flow by at least 5×.

use criterion::{criterion_group, criterion_main, Criterion};
use socet::atpg::TpgConfig;
use socet::cells::DftCosts;
use socet::flow::{prepare_soc_uncached, prepare_soc_with, PrepareOptions};
use socet::rtl::{Soc, SocBuilder};
use std::sync::Arc;

fn light_tpg() -> TpgConfig {
    TpgConfig {
        random_patterns: 16,
        max_backtracks: 32,
        ..TpgConfig::default()
    }
}

/// Four instances of one core behind a shared `Arc` — the repeated-IP
/// shape the in-process memo exists for.
fn quad_soc() -> Soc {
    let gcd = Arc::new(socet::socs::gcd_core());
    let port = |n: &str| gcd.find_port(n).expect("port exists");
    let mut b = SocBuilder::new("quad");
    let x = b.input_pin("X", 12).expect("fresh");
    let g = b.output_pin("G", 12).expect("fresh");
    let mut prev = None;
    for name in ["gcd_0", "gcd_1", "gcd_2", "gcd_3"] {
        let u = b.instantiate(name, Arc::clone(&gcd)).expect("fresh");
        match prev {
            None => b.connect_pin_to_core(x, u, port("X")).expect("consistent"),
            Some(p) => b
                .connect_cores(p, port("G"), u, port("Y"))
                .expect("consistent"),
        };
        prev = Some(u);
    }
    b.connect_core_to_pin(prev.expect("nonempty"), port("G"), g)
        .expect("consistent");
    b.build().expect("quad SOC is statically consistent")
}

fn bench_prepare(c: &mut Criterion) {
    let costs = DftCosts::default();
    let tpg = light_tpg();
    let system2 = socet::socs::system2();
    let quad = quad_soc();

    let cache = std::env::temp_dir().join(format!("socet-bench-prepare-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let warm_opts = PrepareOptions::new().workers(1).cache_dir(cache.clone());
    // Populate the store once so the "warm" case measures pure cache reads.
    prepare_soc_with(&system2, &costs, &tpg, &warm_opts).expect("system2 prepares");

    let mut group = c.benchmark_group("prepare");
    group.sample_size(10);
    group.bench_function("cold-serial/system2", |b| {
        b.iter(|| prepare_soc_uncached(&system2, &costs, &tpg).expect("system2 prepares"))
    });
    group.bench_function("pipeline/system2", |b| {
        b.iter(|| {
            prepare_soc_with(&system2, &costs, &tpg, &PrepareOptions::default())
                .expect("system2 prepares")
        })
    });
    group.bench_function("disk-warm/system2", |b| {
        b.iter(|| prepare_soc_with(&system2, &costs, &tpg, &warm_opts).expect("system2 prepares"))
    });
    group.bench_function("cold-serial/quad-gcd", |b| {
        b.iter(|| prepare_soc_uncached(&quad, &costs, &tpg).expect("quad prepares"))
    });
    group.bench_function("memo/quad-gcd", |b| {
        b.iter(|| {
            prepare_soc_with(&quad, &costs, &tpg, &PrepareOptions::default())
                .expect("quad prepares")
        })
    });
    // The observability acceptance bar: full trace capture must sit within
    // noise of the untraced run (the recorded path above), and the
    // recording-disabled TLS fast path costs one branch per call site.
    group.bench_function("traced/system2", |b| {
        b.iter(|| {
            let shared = socet::obs::SharedRecorder::new();
            let opts = PrepareOptions::new().recorder(shared.clone());
            let out = prepare_soc_with(&system2, &costs, &tpg, &opts).expect("system2 prepares");
            let rec = shared.take();
            assert!(rec.span_count(socet::obs::names::PREPARE_CORE) > 0);
            out
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&cache);
}

criterion_group!(benches, bench_prepare);
criterion_main!(benches);
